// Command pushbench runs the paper's experiments and prints the tables
// and series each figure reports.
//
// Usage:
//
//	pushbench -exp all                 # every experiment at small scale
//	pushbench -exp fig5                # one experiment
//	pushbench -exp fig6 -sites w1,w16  # subset of the popular sites
//	pushbench -exp fig3a -scale paper  # paper scale (100 sites, 31 runs)
//	pushbench -exp all -jobs 8         # fan runs/sites across 8 workers
//	pushbench -exp all -jobs 1         # strictly sequential (same output)
//
// The cross-scenario sweep re-runs the strategy comparison under every
// named network scenario (or a chosen subset):
//
//	pushbench -experiment scenarios                    # all scenarios
//	pushbench -experiment scenarios -scenario lte,3g   # just these links
//
// -experiment is an alias for -exp.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	var exp string
	flag.StringVar(&exp, "exp", "all", "experiment: fig1|fig2a|fig2b|pushable|fig3a|fig3b|types|fig4|fig5|fig6|scenarios|all")
	flag.StringVar(&exp, "experiment", "all", "alias for -exp")
	scaleName := flag.String("scale", "small", "small|paper")
	sitesFlag := flag.String("sites", "", "comma-separated w-site ids for fig6 (default all)")
	scenarioFlag := flag.String("scenario", "all", "comma-separated scenario names for -experiment scenarios (all, or any of: "+strings.Join(scenario.Names(), ", ")+")")
	runs := flag.Int("runs", 0, "override repetitions per configuration")
	nsites := flag.Int("nsites", 0, "override sites per set")
	popN := flag.Int("population", 200_000, "population size for fig1")
	jobs := flag.Int("jobs", 0, "worker-pool size (0 = GOMAXPROCS, 1 = sequential); output is identical for any value")
	flag.Parse()

	scale := core.SmallScale()
	if *scaleName == "paper" {
		scale = core.PaperScale()
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	if *nsites > 0 {
		scale.Sites = *nsites
	}
	scale.Jobs = *jobs
	var fig6Sites []string
	if *sitesFlag != "" {
		fig6Sites = strings.Split(*sitesFlag, ",")
	}
	// Resolve scenario names eagerly so a typo fails before any
	// experiment runs — not minutes in, after earlier tables printed.
	scenarios := scenario.All()
	if *scenarioFlag != "" && *scenarioFlag != "all" {
		scenarios = scenarios[:0]
		for _, n := range strings.Split(*scenarioFlag, ",") {
			sc, err := scenario.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			scenarios = append(scenarios, sc)
		}
	}

	one := func(t *core.Table) []*core.Table { return []*core.Table{t} }
	experiments := map[string]func() []*core.Table{
		"fig1":     func() []*core.Table { return one(core.Fig1Adoption(*popN, scale.Seed)) },
		"fig2a":    func() []*core.Table { return one(core.Fig2aVariability(scale)) },
		"fig2b":    func() []*core.Table { return one(core.Fig2bPushVsNoPush(scale)) },
		"pushable": func() []*core.Table { return one(core.PushableObjects(scale)) },
		"fig3a":    func() []*core.Table { return one(core.Fig3aPushAll(scale)) },
		"fig3b":    func() []*core.Table { return one(core.Fig3bPushAmount(scale)) },
		"types":    func() []*core.Table { return one(core.PushByTypeAnalysis(scale)) },
		"fig4":     func() []*core.Table { return one(core.Fig4Synthetic(scale)) },
		"fig5":     func() []*core.Table { return one(core.Fig5Interleaving(scale.Runs, scale.Seed, scale.Jobs)) },
		"fig6":     func() []*core.Table { return one(core.Fig6Popular(fig6Sites, scale)) },
		"scenarios": func() []*core.Table {
			tabs, err := core.ScenarioSweep(scenarios, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			return tabs
		},
	}
	order := []string{"fig1", "fig2a", "fig2b", "pushable", "fig3a", "fig3b", "types", "fig4", "fig5", "fig6", "scenarios"}

	if exp == "all" {
		for _, name := range order {
			for _, t := range experiments[name]() {
				t.Print(os.Stdout)
			}
		}
		return
	}
	fn, ok := experiments[exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s, all)\n", exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	for _, t := range fn() {
		t.Print(os.Stdout)
	}
}
