// Command pushbench runs the paper's experiments and prints the tables
// and series each figure reports.
//
// Usage:
//
//	pushbench -exp all                 # every experiment at small scale
//	pushbench -exp fig5                # one experiment
//	pushbench -exp fig6 -sites w1,w16  # subset of the popular sites
//	pushbench -exp fig3a -scale paper  # paper scale (100 sites, 31 runs)
//	pushbench -exp all -jobs 8         # fan runs/sites across 8 workers
//	pushbench -exp all -jobs 1         # strictly sequential (same output)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig2a|fig2b|pushable|fig3a|fig3b|types|fig4|fig5|fig6|all")
	scaleName := flag.String("scale", "small", "small|paper")
	sitesFlag := flag.String("sites", "", "comma-separated w-site ids for fig6 (default all)")
	runs := flag.Int("runs", 0, "override repetitions per configuration")
	nsites := flag.Int("nsites", 0, "override sites per set")
	popN := flag.Int("population", 200_000, "population size for fig1")
	jobs := flag.Int("jobs", 0, "worker-pool size (0 = GOMAXPROCS, 1 = sequential); output is identical for any value")
	flag.Parse()

	scale := core.SmallScale()
	if *scaleName == "paper" {
		scale = core.PaperScale()
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	if *nsites > 0 {
		scale.Sites = *nsites
	}
	scale.Jobs = *jobs
	var fig6Sites []string
	if *sitesFlag != "" {
		fig6Sites = strings.Split(*sitesFlag, ",")
	}

	experiments := map[string]func() *core.Table{
		"fig1":     func() *core.Table { return core.Fig1Adoption(*popN, scale.Seed) },
		"fig2a":    func() *core.Table { return core.Fig2aVariability(scale) },
		"fig2b":    func() *core.Table { return core.Fig2bPushVsNoPush(scale) },
		"pushable": func() *core.Table { return core.PushableObjects(scale) },
		"fig3a":    func() *core.Table { return core.Fig3aPushAll(scale) },
		"fig3b":    func() *core.Table { return core.Fig3bPushAmount(scale) },
		"types":    func() *core.Table { return core.PushByTypeAnalysis(scale) },
		"fig4":     func() *core.Table { return core.Fig4Synthetic(scale) },
		"fig5":     func() *core.Table { return core.Fig5Interleaving(scale.Runs, scale.Seed, scale.Jobs) },
		"fig6":     func() *core.Table { return core.Fig6Popular(fig6Sites, scale) },
	}
	order := []string{"fig1", "fig2a", "fig2b", "pushable", "fig3a", "fig3b", "types", "fig4", "fig5", "fig6"}

	if *exp == "all" {
		for _, name := range order {
			experiments[name]().Print(os.Stdout)
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s, all)\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	fn().Print(os.Stdout)
}
