// Command recorder captures a website into a replayable record database,
// playing the role of the paper's mitmproxy capture step. Two modes:
//
// Crawl mode (fetch a page and all subresources directly):
//
//	recorder -crawl http://example.org/ -out example.site
//
// Proxy mode (record whatever a browser fetches through it):
//
//	recorder -proxy :8080 -out session.site
//	# configure the browser's HTTP proxy to localhost:8080, browse,
//	# then SIGINT to write the database.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/page"
	"repro/internal/replay"
)

func main() {
	crawlURL := flag.String("crawl", "", "URL to crawl and record")
	proxyAddr := flag.String("proxy", "", "listen address for the recording proxy")
	out := flag.String("out", "site.site", "output file")
	maxObjects := flag.Int("max", 500, "maximum objects to record")
	name := flag.String("name", "recorded", "site name")
	flag.Parse()

	rec := replay.NewRecorder(replay.NewDB(), http.DefaultClient)
	switch {
	case *crawlURL != "":
		site, err := rec.Crawl(*name, *crawlURL, *maxObjects)
		if err != nil {
			log.Fatal(err)
		}
		if err := replay.SaveSite(*out, site); err != nil {
			log.Fatal(err)
		}
		log.Printf("recorded %d objects from %s into %s", site.DB.Len(), *crawlURL, *out)

	case *proxyAddr != "":
		srv := &http.Server{Addr: *proxyAddr, Handler: rec}
		go func() {
			log.Printf("recording proxy on %s; press Ctrl-C to save to %s", *proxyAddr, *out)
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		db := rec.DB()
		if db.Len() == 0 {
			log.Fatal("nothing recorded")
		}
		base := db.Entries()[0].URL
		site := replay.NewSite(*name, page.URL{Scheme: base.Scheme, Authority: base.Authority, Path: "/"}, db)
		if err := replay.SaveSite(*out, site); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved %d objects to %s", db.Len(), *out)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
