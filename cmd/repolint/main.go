// Command repolint is the repository's multichecker: it type-checks
// every package of the module and runs the internal/analysis suite —
// directives, determinism, resetcomplete, hotpath, retain — that
// machine-checks the engine's contracts (see doc.go at the repository
// root for the invariant catalog). Findings print as
//
//	path/file.go:line:col: [analyzer] message
//
// and any finding makes the exit status 1, which is how CI gates PRs
// on the invariants. Run it from anywhere inside the module:
//
//	go run ./cmd/repolint ./...
//
// Package patterns other than ./... are matched as import-path
// suffixes, so `go run ./cmd/repolint internal/h2` checks one package.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		only = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		names := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			names[strings.TrimSpace(n)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range suite {
			if names[a.Name] {
				picked = append(picked, a)
				delete(names, a.Name)
			}
		}
		for n := range names {
			fmt.Fprintf(os.Stderr, "repolint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		suite = picked
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	pkgs, fset, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}

	type finding struct {
		pos       string
		file      string
		line, col int
		analyzer  string
		msg       string
	}
	var findings []finding
	for _, pkg := range pkgs {
		if !selected(pkg.Path, flag.Args()) {
			continue
		}
		for _, a := range suite {
			if !a.InScope(pkg.Path) {
				continue
			}
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					p := fset.Position(d.Pos)
					file := p.Filename
					if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = rel
					}
					findings = append(findings, finding{
						pos: p.String(), file: file, line: p.Line, col: p.Column,
						analyzer: a.Name, msg: d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "repolint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.file, f.line, f.col, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selected reports whether the package matches the command-line
// patterns. No patterns and ./... mean everything; other patterns match
// as import-path suffixes (internal/h2 matches repro/internal/h2).
func selected(path string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		p = strings.TrimSuffix(strings.TrimPrefix(p, "./"), "/")
		if p == "..." || p == "" {
			return true
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if path == rest || strings.HasSuffix(path, "/"+rest) ||
				strings.Contains(path+"/", "/"+rest+"/") {
				return true
			}
			continue
		}
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}
