// Command replay-server serves a recorded or modelled site over real TCP
// using the repository's from-scratch HTTP/2 stack (h2c: HTTP/2 without
// TLS), optionally pushing resources according to a strategy — a minimal
// stand-in for the paper's h2o + FastCGI record server.
//
// Usage:
//
//	replay-server -site w1 -addr :8443
//	replay-server -load snapshot.site -strategy push-all
//
// Probe with any h2c-capable client, e.g.:
//
//	curl --http2-prior-knowledge http://localhost:8443/
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/corpus"
	"repro/internal/h2"
	"repro/internal/replay"
	"repro/internal/strategy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8443", "listen address")
	siteID := flag.String("site", "s2", "built-in site: s1..s10, w1..w20, or 'random'")
	load := flag.String("load", "", "load a recorded .site file instead of a built-in")
	stratName := flag.String("strategy", "no-push", "no-push|push-all|push-critical|push-critical-optimized")
	flag.Parse()

	site, err := pickSite(*siteID, *load)
	if err != nil {
		log.Fatal(err)
	}
	st, err := pickStrategy(*stratName)
	if err != nil {
		log.Fatal(err)
	}
	site, plan := st.Apply(site, nil)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s on http://%s/ (h2c) with strategy %q", site.Name, *addr, st.Name())
	log.Printf("probe: curl --http2-prior-knowledge http://%s/", *addr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go serveConn(conn, site, plan)
	}
}

func serveConn(conn net.Conn, site *replay.Site, plan replay.Plan) {
	srv := h2.NewServer(h2.DefaultSettings(), func(sw *h2.ServerStream, req h2.Request) {
		authority := req.Authority
		entry := site.DB.Lookup(authority, req.Path)
		if entry == nil {
			// Host headers from curl (localhost:8443) won't match the
			// recorded hostnames: fall back to the base host.
			entry = site.DB.Lookup(site.Base.Authority, req.Path)
		}
		if entry == nil {
			sw.Respond(404, "text/plain", []byte("not in record database\n"))
			return
		}
		var pushed []*h2.ServerStream
		var entries []*replay.Entry
		for _, u := range plan.PushesFor(entry.URL.String()) {
			pe := site.DB.Get(u)
			if pe == nil {
				continue
			}
			psw := sw.Push(h2.Request{Method: "GET", Scheme: "http",
				Authority: req.Authority, Path: pe.URL.Path})
			if psw == nil {
				break
			}
			pushed = append(pushed, psw)
			entries = append(entries, pe)
		}
		if spec, ok := plan.Interleave[entry.URL.String()]; ok && len(pushed) > 0 {
			ids := make([]uint32, len(pushed))
			for i, p := range pushed {
				ids[i] = p.St.ID
			}
			sw.Interleave(spec.OffsetBytes, ids)
		}
		sw.Respond(entry.Status, entry.ContentType, entry.Body)
		for i, psw := range pushed {
			psw.Respond(entries[i].Status, entries[i].ContentType, entries[i].Body)
		}
	})
	io := h2.RunIO(srv.Core, conn)
	<-io.Done()
}

func pickSite(id, load string) (*replay.Site, error) {
	if load != "" {
		return replay.LoadSite(load)
	}
	if id == "random" {
		return corpus.Generate(corpus.RandomProfile(), 0, 1), nil
	}
	if len(id) > 0 && id[0] == 'w' {
		if s := corpus.PopularSite(id); s != nil {
			return s, nil
		}
	}
	for i, s := range corpus.SyntheticSites() {
		if fmt.Sprintf("s%d", i+1) == id {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown site %q", id)
}

func pickStrategy(name string) (strategy.Strategy, error) {
	switch name {
	case "no-push":
		return strategy.NoPush{}, nil
	case "push-all":
		return strategy.PushAll{}, nil
	case "push-critical":
		return strategy.PushCritical{}, nil
	case "push-critical-optimized":
		return strategy.PushCriticalOptimized{}, nil
	}
	fmt.Fprintln(os.Stderr, "strategies: no-push, push-all, push-critical, push-critical-optimized")
	return nil, fmt.Errorf("unknown strategy %q", name)
}
