// Command crawler runs the adoption study of Fig. 1: monthly scans of a
// synthetic Alexa-1M-like population counting HTTP/2 and Server Push
// support.
//
//	crawler -population 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/crawl"
)

func main() {
	n := flag.Int("population", 1_000_000, "population size (domains)")
	seed := flag.Int64("seed", 1, "population seed")
	failures := flag.Float64("failure-rate", 0.01, "per-domain probe failure rate")
	flag.Parse()

	pop := crawl.DefaultPopulation(*n, *seed)
	sc := crawl.NewScanner(*seed, *failures)
	series := sc.Study(pop)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "month\tprobed\th2\tpush\tpush/h2")
	for _, r := range series {
		ratio := 0.0
		if r.H2Count > 0 {
			ratio = float64(r.PushCount) / float64(r.H2Count)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.5f\n", r.Month, r.Probed, r.H2Count, r.PushCount, ratio)
	}
	tw.Flush()
}
