#!/usr/bin/env bash
# scale.sh — measure the executor scaling curve and emit a BENCH-schema
# JSON record.
#
# Usage: scripts/scale.sh [smoke|full] [out.json]
#
#   smoke  tiny experiment, two sweep points per executor (CI tripwire)
#   full   benchmark scale, Jobs/Shards = 1,2,4,8 (default)
#
# Builds cmd/pushbench once, then wall-clocks `pushbench -exp fig2b`
# under the in-process pool (-jobs sweep) and the multiprocess executor
# (-executor multiprocess -shards sweep). Every run's table output is
# diffed against the sequential baseline before its time is recorded, so
# a scaling win can never be bought with a behavior change. Results use
# the bench.sh JSON schema (name/iterations/ns_per_op + executor/shards
# per result, gomaxprocs/num_cpu at the top) so the perf-trajectory
# tooling reads both files the same way; wall-clock rows carry
# bytes_per_op/allocs_per_op null.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

mode="${1:-full}"
out="${2:-BENCH_pr10.json}"

case "$mode" in
smoke)
	nsites=2 runs=2
	jobs_sweep=(1 2)
	shards_sweep=(1 2)
	;;
full)
	nsites=8 runs=3
	jobs_sweep=(1 2 4 8)
	shards_sweep=(1 2 4 8)
	;;
*)
	echo "usage: $0 [smoke|full] [out.json]" >&2
	exit 2
	;;
esac

bin="$(mktemp -d)/pushbench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/pushbench

ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
gomaxprocs="${GOMAXPROCS:-$ncpu}"

base="$(dirname "$bin")/base.txt"
got="$(dirname "$bin")/got.txt"
"$bin" -exp fig2b -nsites "$nsites" -runs "$runs" -jobs 1 >"$base"

# timed <name> <executor> <shards> <pushbench flags...>
# Runs one configuration, requires byte-identical tables, records wall
# clock in ns.
recs=()
timed() {
	local name="$1" executor="$2" shards="$3"
	shift 3
	local t0 t1
	t0="$(date +%s%N)"
	"$bin" -exp fig2b -nsites "$nsites" -runs "$runs" "$@" >"$got"
	t1="$(date +%s%N)"
	if ! diff -q "$base" "$got" >/dev/null; then
		echo "scale.sh: $name output diverged from sequential baseline:" >&2
		diff "$base" "$got" >&2 || true
		exit 1
	fi
	local ns=$((t1 - t0))
	recs+=("$(printf '    {"name": "%s", "iterations": 1, "ns_per_op": %s, "bytes_per_op": null, "allocs_per_op": null, "executor": "%s", "shards": %s}' \
		"$name" "$ns" "$executor" "$shards")")
	echo "$name: $((ns / 1000000)) ms"
}

for j in "${jobs_sweep[@]}"; do
	timed "ScaleFig2b/Jobs=$j" inprocess 1 -jobs "$j"
done
for s in "${shards_sweep[@]}"; do
	timed "ScaleFig2b/Multiprocess/Shards=$s" multiprocess "$s" \
		-jobs 1 -executor multiprocess -shards "$s"
done

{
	printf '{\n  "mode": "%s",\n  "gomaxprocs": %s,\n  "num_cpu": %s,\n  "results": [\n' "$mode" "$gomaxprocs" "$ncpu"
	for i in "${!recs[@]}"; do
		sep=","
		[ "$i" -eq $((${#recs[@]} - 1)) ] && sep=""
		printf '%s%s\n' "${recs[$i]}" "$sep"
	done
	printf '  ]\n}\n'
} >"$out"

echo "wrote $out"
