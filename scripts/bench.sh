#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmarks and emit a JSON record.
#
# Usage: scripts/bench.sh [smoke|full] [out.json]
#
#   smoke  one iteration per benchmark (CI: proves the harness works)
#   full   timed runs (default; override duration with BENCHTIME=5s)
#
# The default output path is BENCH_pr4.json in the repo root, the perf
# record established by PR 4's prepare-once/replay-many split (prepared
# sites + reusable run contexts). The checked-in BENCH_prN.json files
# wrap two of these records ("before"/"after" each refactor); subsequent
# PRs append their own BENCH_prN.json by pointing the second argument at
# a new file. The benchmark set includes the Jobs=1/2/4/8 engine sweep,
# so the scaling curve is part of every record.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
out="${2:-BENCH_pr4.json}"

args=(-run '^$' -bench 'PageLoad|ScenarioSweep|Engine' -benchmem)
case "$mode" in
smoke) args+=(-benchtime 1x) ;;
full) args+=(-benchtime "${BENCHTIME:-2s}") ;;
*)
	echo "usage: $0 [smoke|full] [out.json]" >&2
	exit 2
	;;
esac

txt="$(go test "${args[@]}" .)"
printf '%s\n' "$txt"

printf '%s\n' "$txt" | awk -v mode="$mode" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = "null"; bytes = "null"; allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	recs[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, bytes, allocs)
}
END {
	printf "{\n  \"mode\": \"%s\",\n  \"results\": [\n", mode
	for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' >"$out"

echo "wrote $out"
