#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmarks and emit a JSON record.
#
# Usage: scripts/bench.sh [smoke|full] [out.json]
#
#   smoke  one iteration per benchmark (CI: proves the harness works)
#   full   timed runs (default; override duration with BENCHTIME=5s)
#
# The default output path is BENCH_pr9.json in the repo root, the perf
# record for PR 9's population-scale sweeps (N clients on one shared
# bottleneck, streamed through O(1)-memory sketch cells). The checked-in
# BENCH_prN.json files wrap two of these records ("before"/"after" each
# refactor); subsequent PRs append their own BENCH_prN.json by pointing
# the second argument at a new file. The benchmark set includes the
# Jobs=1/2/4/8 engine sweep plus its Multiprocess/Shards=1/2/4/8 twin,
# so both executors' scaling curves are part of every record; each
# result carries executor/shards fields, and the JSON carries
# gomaxprocs/num_cpu so a 1-core container run (where in-process Jobs>1
# cannot show wall-clock speedup) is machine-readable.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

mode="${1:-full}"
out="${2:-BENCH_pr9.json}"

args=(-run '^$' -bench 'PageLoad|ScenarioSweep|Engine|Population' -benchmem)
case "$mode" in
smoke) args+=(-benchtime 1x) ;;
full) args+=(-benchtime "${BENCHTIME:-2s}") ;;
*)
	echo "usage: $0 [smoke|full] [out.json]" >&2
	exit 2
	;;
esac

ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"

txt="$(go test "${args[@]}" .)"
printf '%s\n' "$txt"

printf '%s\n' "$txt" | awk -v mode="$mode" -v ncpu="$ncpu" '
/^Benchmark/ {
	name = $1
	# The -N suffix on benchmark names is GOMAXPROCS for the run; Go
	# omits it entirely when GOMAXPROCS is 1.
	if (match(name, /-[0-9]+$/)) {
		gomaxprocs = substr(name, RSTART + 1)
		sub(/-[0-9]+$/, "", name)
	} else if (gomaxprocs == "") {
		gomaxprocs = 1
	}
	iters = $2
	ns = "null"; bytes = "null"; allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	# Execution backend, from the sub-benchmark name: the engine sweep
	# runs a Multiprocess/Shards=N leg next to the in-process Jobs=N
	# legs, and the scaling records must be separable downstream.
	executor = (name ~ /Multiprocess/) ? "multiprocess" : "inprocess"
	shards = 1
	if (match(name, /Shards=[0-9]+/)) shards = substr(name, RSTART + 7, RLENGTH - 7)
	recs[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"executor\": \"%s\", \"shards\": %s}", \
		name, iters, ns, bytes, allocs, executor, shards)
}
END {
	if (gomaxprocs == "") gomaxprocs = "null"
	printf "{\n  \"mode\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"num_cpu\": %s,\n  \"results\": [\n", mode, gomaxprocs, ncpu
	for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' >"$out"

echo "wrote $out"
