#!/usr/bin/env bash
# lint.sh — the repository's lint gate: formatting, vet, and the
# repolint contract analyzers (see doc.go, "Machine-checked contracts").
#
# Usage: scripts/lint.sh
#
# Everything here runs from the standard toolchain plus this repo's own
# cmd/repolint; no tool needs to be installed. CI runs this script as
# its lint step, and staticcheck/govulncheck separately (those do need
# network access to install).
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== repolint"
go run ./cmd/repolint ./...

echo "lint clean"
