// Strategies: run the paper's six Sec. 5 strategies against one of the
// modelled popular sites (default w1, the wikipedia-article model whose
// huge render-blocking document makes interleaving push shine) and print
// relative changes versus the no-push baseline.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/strategy"
)

func main() {
	id := flag.String("site", "w1", "popular site id (w1..w20)")
	runs := flag.Int("runs", 7, "repetitions per strategy")
	flag.Parse()

	site := corpus.PopularSite(*id)
	if site == nil {
		log.Fatalf("unknown site %q (w1..w20)", *id)
	}
	tb := core.NewTestbed()
	tb.Runs = *runs

	fmt.Printf("site %s: %d objects on %d hosts, %.0f%% pushable\n\n",
		site.Name, site.DB.Len(), len(site.Hosts()), site.PushableFraction()*100)

	tr := tb.Trace(site, 5)
	base := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
	fmt.Printf("%-26s %10s %12s %10s\n", "strategy", "ΔSI", "ΔPLT", "KB pushed")
	fmt.Printf("%-26s %9.1fms %11.1fms %10d\n", "no push (baseline)",
		float64(base.MedianSI)/1e6, float64(base.MedianPLT)/1e6, 0)
	for _, st := range core.PopularStrategies()[1:] {
		ev := tb.EvaluateStrategy(site, st, tr)
		fmt.Printf("%-26s %9.1f%% %11.1f%% %10d\n", st.Name(),
			metrics.RelChange(ev.SI.Mean(), base.SI.Mean())*100,
			metrics.RelChange(ev.PLT.Mean(), base.PLT.Mean())*100,
			ev.BytesPushed/1024)
	}
	fmt.Println("\nΔ<0 is an improvement over no push (paper Fig. 6).")
}
