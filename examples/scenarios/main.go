// Scenarios: ask the question the paper could not — "where does push
// actually help?" — by loading one page under every named network
// scenario (paper DSL, fiber, cable, LTE, 3G, lossy Wi-Fi, satellite)
// and comparing a push strategy against the no-push baseline on each.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/strategy"
)

func main() {
	runs := flag.Int("runs", 7, "repetitions per scenario")
	flag.Parse()

	// The quickstart page: render-blocking CSS, a hero image, a script.
	b := corpus.NewPage("scenarios.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"hero", "intro"}, 80))
	b.Div("hero", 300)
	b.Image("/img/hero.png", 1280, 360, 60*1024)
	b.Text(700, "intro")
	b.Script("/js/app.js", 30*1024, 20, false, false)
	b.PadHTML(40 * 1024)
	site := b.Build("scenarios")

	fmt.Printf("%-12s %-62s %10s %10s\n", "scenario", "link", "ΔSI", "ΔPLT")
	for _, sc := range scenario.All() {
		tb, err := core.NewTestbedFor(sc)
		if err != nil {
			panic(err) // library scenarios always validate
		}
		tb.Runs = *runs
		base := tb.EvaluateStrategy(site, strategy.NoPush{}, nil)
		ev := tb.EvaluateStrategy(site, strategy.PushCriticalOptimized{}, nil)
		fmt.Printf("%-12s %-62s %9.1f%% %9.1f%%\n",
			sc.Name, sc.Info,
			metrics.RelChange(ev.SI.Mean(), base.SI.Mean())*100,
			metrics.RelChange(ev.PLT.Mean(), base.PLT.Mean())*100)
	}
	fmt.Println("\nΔ<0 means push critical optimized beat no push under that scenario.")
}
