// Quickstart: build a small site, load it in the testbed with and
// without Server Push, and print the paper's two metrics.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/strategy"
)

func main() {
	// A page with a render-blocking stylesheet, a hero image and a
	// script — the minimal structure where push can matter.
	b := corpus.NewPage("quickstart.test")
	b.CSS("/css/main.css", corpus.SimpleCSS([]string{"hero", "intro"}, 80))
	b.Div("hero", 300)
	b.Image("/img/hero.png", 1280, 360, 60*1024)
	b.Text(700, "intro")
	b.Script("/js/app.js", 30*1024, 20, false, false)
	b.PadHTML(40 * 1024)
	site := b.Build("quickstart")

	tb := core.NewTestbed() // DSL link: 16/1 Mbit/s, 50 ms RTT; 31 runs
	tb.Runs = 11

	fmt.Println("site:", site.Name, "objects:", site.DB.Len())
	for _, st := range []strategy.Strategy{
		strategy.NoPush{},
		strategy.PushAll{},
		strategy.PushCriticalOptimized{},
	} {
		ev := tb.EvaluateStrategy(site, st, nil)
		fmt.Printf("%-25s PLT %7.1fms   SpeedIndex %7.1fms   pushed %4dKB\n",
			st.Name(),
			float64(ev.MedianPLT)/1e6,
			float64(ev.MedianSI)/1e6,
			ev.BytesPushed/1024)
	}
	fmt.Println("\n(Δ<0 vs 'no push' means the strategy helped; see README.md)")
}
