// Recordreplay: the full record-and-replay loop on a live (local) site.
// A real net/http server plays "the Internet"; the recorder crawls it
// through HTTP/1.1 like the paper's mitmproxy stage; the snapshot is then
// replayed in the deterministic testbed under two push strategies.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/replay"
	"repro/internal/strategy"
)

func main() {
	// "The Internet": a live origin built with net/http.
	mux := http.NewServeMux()
	css := corpus.SimpleCSS([]string{"hero", "body-text"}, 120)
	html := `<!DOCTYPE html><html><head><title>live</title>
<link rel="stylesheet" href="/assets/site.css">
</head><body>
<div class="hero">Welcome to the live demo site with enough hero text to paint.</div>
<img src="/assets/hero.png" width="1280" height="320">
<p class="body-text">` + longText() + `</p>
<script src="/assets/app.js"></script>
</body></html>`
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, html)
	})
	mux.HandleFunc("/assets/site.css", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprint(w, css)
	})
	mux.HandleFunc("/assets/hero.png", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/png")
		w.Write(make([]byte, 48*1024))
	})
	mux.HandleFunc("/assets/app.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, "function boot(){return 42;}")
	})
	live := httptest.NewServer(mux)
	defer live.Close()

	// Record: crawl the live site into a Mahimahi-style database.
	rec := replay.NewRecorder(replay.NewDB(), live.Client())
	site, err := rec.Crawl("live-demo", live.URL+"/", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d objects from %s\n\n", site.DB.Len(), live.URL)

	// Replay: deterministic loads under two strategies.
	tb := core.NewTestbed()
	tb.Runs = 9
	for _, st := range []strategy.Strategy{strategy.NoPush{}, strategy.PushAll{}} {
		ev := tb.EvaluateStrategy(site, st, nil)
		fmt.Printf("%-12s PLT %7.1fms  SpeedIndex %7.1fms  (stderr %.2fms over %d runs)\n",
			st.Name(),
			float64(ev.MedianPLT)/1e6, float64(ev.MedianSI)/1e6,
			float64(ev.PLT.StdErr())/1e6, ev.PLT.N())
	}
	fmt.Println("\nthe replay is bit-identical run to run; the live site was only")
	fmt.Println("needed once, at record time (Sec. 4.1 of the paper).")
}

func longText() string {
	s := ""
	for i := 0; i < 40; i++ {
		s += "replayed content stays stable between runs which removes variability. "
	}
	return s
}
