// Interleaving: the paper's Fig. 5 motivating example. A page references
// a stylesheet in <head>; the body grows from 10 to 90 KB. Plain push
// sends the CSS only after the whole HTML (the pushed stream is a child
// of the document stream); interleaving push hard-switches to the CSS
// after a 4 KB offset and resumes the HTML — its SpeedIndex stays flat.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	tab, err := core.Fig5Interleaving(core.ExperimentScale{Runs: 7, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(tab.String())

	fmt.Println("reading the table: 'no push' grows with the HTML size because the")
	fmt.Println("browser prioritizes the document over the CSS; 'interleaving' stays")
	fmt.Println("flat because the critical CSS arrives after the first 4KB of HTML.")
}
